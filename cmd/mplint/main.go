// mplint is the project's static-analysis suite: nine analyzers that
// enforce the determinism and soundness contracts the differential and
// fuzz suites otherwise only catch at runtime (see internal/lint). Six
// of them — maporder, wallclock, ptraddr, selectorder, exhaustive and
// lockorder — fire only inside the deterministic closure: the functions
// reachable from the engine entry points over an interprocedural call
// graph that both run modes share.
//
// It runs two ways:
//
//	mplint ./...                 # standalone over package patterns
//	go vet -vettool=$(mplint)    # as a vet tool, one build unit at a time
//
// Standalone mode loads and typechecks from source (offline, no
// dependencies) and resolves the closure in-process over every loaded
// package; vettool mode speaks the vet unit protocol (-V=full, -flags, a
// JSON .cfg per package) against the compiler's export data, carrying
// the call-graph facts between units through vetx files.
//
// Flags:
//
//	-entrypoints  extend the closure roots (func:pkg.Name, iface:pkg.Name,
//	              struct:pkg.Name; bare items mean func:) — forwarded by
//	              `go vet` too, so both drivers honor it
//	-sarif        print findings as SARIF 2.1.0 instead of text
//	-merge-sarif  merge the per-unit SARIF fragments a vet run left in a
//	              directory (see MPLINT_SARIF_DIR) and print the result
//	-fix          insert //lint:<marker> TODO annotations above findings
//	              (idempotent: existing markers are never duplicated)
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mpbasset/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("mplint", flag.ContinueOnError)
	versionFlag := fs.String("V", "", "print version and exit (the go command probes -V=full for its build cache)")
	abs := fs.Bool("abs", false, "print absolute file paths (editor-jump friendly from any directory)")
	flagsQuery := fs.Bool("flags", false, "print the tool's flag schema as JSON (vet driver protocol)")
	entrypoints := fs.String("entrypoints", "", "comma-separated extra closure entry points: func:pkg.Name | iface:pkg.Name | struct:pkg.Name (bare means func:)")
	sarif := fs.Bool("sarif", false, "emit findings as SARIF 2.1.0 on stdout (standalone mode)")
	mergeSARIF := fs.String("merge-sarif", "", "merge per-unit SARIF fragments from this directory and print the result")
	fix := fs.Bool("fix", false, "insert suppression annotations above findings instead of reporting them (standalone mode)")
	if err := fs.Parse(args); err != nil {
		return 1
	}

	switch {
	case *versionFlag != "":
		return printVersion()
	case *flagsQuery:
		// The vet driver re-invokes the tool with any of these the user
		// passed to `go vet`; -entrypoints is the one that changes
		// results, and it participates in vet's cache key.
		schema := []map[string]any{
			{"Name": "entrypoints", "Bool": false, "Usage": "extra closure entry points (func:|iface:|struct: items, comma-separated)"},
		}
		out, _ := json.Marshal(schema)
		fmt.Println(string(out))
		return 0
	case *mergeSARIF != "":
		wd, _ := os.Getwd()
		data, err := lint.MergeSARIF(*mergeSARIF, wd)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mplint: %v\n", err)
			return 1
		}
		fmt.Println(string(data))
		return 0
	}

	spec, err := lint.ParseEntryPoints(*entrypoints)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mplint: %v\n", err)
		return 1
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return lint.RunUnitchecker(os.Stderr, rest[0], lint.All(), spec)
	}
	return standalone(os.Stdout, rest, *abs, *sarif, *fix, spec)
}

// standalone loads patterns (default ./...) from the current directory,
// runs the closure-aware pipeline over all of them at once, and prints
// findings as file:line:col lines (or SARIF). Exit codes follow the
// unitchecker convention: 0 clean, 1 load failure, 2 findings.
func standalone(w io.Writer, patterns []string, abs, sarif, fix bool, spec *lint.EntryPoints) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := lint.RunModule(".", patterns, lint.All(), spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mplint: %v\n", err)
		return 1
	}
	if fix {
		changed, skipped, err := lint.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mplint: %v\n", err)
			return 1
		}
		fmt.Fprintf(w, "mplint: annotated findings in %d file(s)\n", changed)
		for _, d := range skipped {
			fmt.Fprintf(w, "%s: no suppression marker for %s: fix the site instead\n", d.Pos, d.Analyzer)
		}
		if len(skipped) > 0 {
			return 2
		}
		return 0
	}
	if sarif {
		wd, _ := os.Getwd()
		data, err := lint.SARIF(diags, lint.All(), wd)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mplint: %v\n", err)
			return 1
		}
		fmt.Fprintln(w, string(data))
		if len(diags) > 0 {
			return 2
		}
		return 0
	}
	exit := 0
	for _, d := range diags {
		name := d.Pos.Filename
		if abs {
			if a, err := filepath.Abs(name); err == nil {
				name = a
			}
		} else if rel, err := filepath.Rel(".", name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Fprintf(w, "%s:%d:%d: %s [%s]\n", name, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
		exit = 2
	}
	return exit
}

// printVersion implements the `-V=full` probe: the go command fingerprints
// vet tools by this line, so it must change whenever the binary does —
// hashing the executable ties the fingerprint to the build, which is what
// keeps `go vet -vettool` results correctly cached and correctly
// invalidated when an analyzer changes.
func printVersion() int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mplint: %v\n", err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mplint: %v\n", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(os.Stderr, "mplint: %v\n", err)
		return 1
	}
	// The SARIF fragment directory participates in the fingerprint: vet
	// never re-runs a tool whose unit result is cached, so a cached unit
	// would silently skip writing its fragment. `make lint-sarif` points
	// MPLINT_SARIF_DIR at a fresh temp directory each run, which misses
	// the cache and makes every unit report.
	io.WriteString(h, os.Getenv("MPLINT_SARIF_DIR"))
	fmt.Printf("mplint version devel buildID=%x\n", h.Sum(nil))
	return 0
}
