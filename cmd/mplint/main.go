// mplint is the project's static-analysis suite: five analyzers that
// enforce the determinism and soundness contracts the differential and
// fuzz suites otherwise only catch at runtime (see internal/lint).
//
// It runs two ways:
//
//	mplint ./...                 # standalone over package patterns
//	go vet -vettool=$(mplint)    # as a vet tool, one build unit at a time
//
// Standalone mode loads and typechecks from source (offline, no
// dependencies); vettool mode speaks the vet unit protocol (-V=full,
// -flags, a JSON .cfg per package) against the compiler's export data,
// which is how CI runs it with full build caching.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mpbasset/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("mplint", flag.ContinueOnError)
	versionFlag := fs.String("V", "", "print version and exit (the go command probes -V=full for its build cache)")
	abs := fs.Bool("abs", false, "print absolute file paths (editor-jump friendly from any directory)")
	flagsQuery := fs.Bool("flags", false, "print the tool's flag schema as JSON (vet driver protocol)")
	if err := fs.Parse(args); err != nil {
		return 1
	}

	switch {
	case *versionFlag != "":
		return printVersion()
	case *flagsQuery:
		// No analyzer flags are exposed to the vet driver.
		fmt.Println("[]")
		return 0
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return lint.RunUnitchecker(os.Stderr, rest[0], lint.All())
	}
	return standalone(os.Stdout, rest, *abs)
}

// standalone loads patterns (default ./...) from the current directory,
// runs every analyzer, and prints findings as file:line:col lines. Exit
// codes follow the unitchecker convention: 0 clean, 1 load failure, 2
// findings.
func standalone(w io.Writer, patterns []string, abs bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mplint: %v\n", err)
		return 1
	}
	exit := 0
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(lint.All(), pkg.Fset, pkg.Files, pkg.Pkg, pkg.TypesInfo)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mplint: %s: %v\n", pkg.Pkg.Path(), err)
			return 1
		}
		for _, d := range diags {
			name := d.Pos.Filename
			if abs {
				if a, err := filepath.Abs(name); err == nil {
					name = a
				}
			} else if rel, err := filepath.Rel(".", name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
			fmt.Fprintf(w, "%s:%d:%d: %s [%s]\n", name, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
			exit = 2
		}
	}
	return exit
}

// printVersion implements the `-V=full` probe: the go command fingerprints
// vet tools by this line, so it must change whenever the binary does —
// hashing the executable ties the fingerprint to the build, which is what
// keeps `go vet -vettool` results correctly cached and correctly
// invalidated when an analyzer changes.
func printVersion() int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mplint: %v\n", err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mplint: %v\n", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(os.Stderr, "mplint: %v\n", err)
		return 1
	}
	fmt.Printf("mplint version devel buildID=%x\n", h.Sum(nil))
	return 0
}
