// Quickstart: define a tiny message-passing protocol from scratch — a
// client collecting acknowledgements from a majority of three servers in
// one quorum transition — and model check it.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"
	"strconv"

	"mpbasset"
	"mpbasset/internal/core"
)

// clientState tracks the client's progress: 0 = idle, 1 = requested,
// 2 = done.
type clientState struct{ Phase int }

func (s *clientState) Key() string            { return "c" + strconv.Itoa(s.Phase) }
func (s *clientState) Clone() core.LocalState { c := *s; return &c }

// serverState is empty — servers are stateless responders.
type serverState struct{}

func (serverState) Key() string            { return "s" }
func (serverState) Clone() core.LocalState { return serverState{} }

func main() {
	const client core.ProcessID = 0
	servers := []core.ProcessID{1, 2, 3}

	request := &core.Transition{
		Name:     "REQUEST",
		Proc:     client,
		Priority: 2,
		Sends:    []core.SendSpec{{Type: "REQ", To: servers}},
		LocalGuard: func(ls core.LocalState) bool {
			return ls.(*clientState).Phase == 0
		},
		Apply: func(c *core.Ctx) {
			c.Local.(*clientState).Phase = 1
			for _, s := range servers {
				c.Send(s, "REQ", core.NoPayload{})
			}
		},
	}

	// Each server answers the request once: a reply transition.
	var serverTs []*core.Transition
	for _, s := range servers {
		serverTs = append(serverTs, &core.Transition{
			Name:            "REQ",
			Proc:            s,
			MsgType:         "REQ",
			Quorum:          1,
			Peers:           []core.ProcessID{client},
			IsReply:         true,
			ReadOnly:        true,
			UniquePerSender: true,
			Priority:        1,
			Sends:           []core.SendSpec{{Type: "ACK", ToSenders: true}},
			Apply: func(c *core.Ctx) {
				c.Send(c.Msgs[0].From, "ACK", core.NoPayload{})
			},
		})
	}

	// The client consumes ACKs from a majority (2 of 3) of servers in a
	// single quorum transition — the paper's modeling style (Figure 2).
	collect := &core.Transition{
		Name:            "ACK",
		Proc:            client,
		MsgType:         "ACK",
		Quorum:          2,
		Peers:           servers,
		UniquePerSender: true,
		Visible:         true,
		LocalGuard: func(ls core.LocalState) bool {
			return ls.(*clientState).Phase == 1
		},
		Apply: func(c *core.Ctx) {
			c.Local.(*clientState).Phase = 2
		},
	}

	p := &core.Protocol{
		Name: "quickstart",
		N:    4,
		Init: func() []core.LocalState {
			return []core.LocalState{&clientState{}, serverState{}, serverState{}, serverState{}}
		},
		Transitions: append([]*core.Transition{request, collect}, serverTs...),
		// Invariant: the client never completes without a majority of
		// servers having answered — trivially true here; flip the quorum
		// to 1 and weaken the guard to see a counterexample.
		Invariant: func(s *core.State) error {
			if s.Local(client).(*clientState).Phase > 2 {
				return errors.New("impossible phase")
			}
			return nil
		},
	}

	for _, o := range []struct {
		label string
		opts  mpbasset.Options
	}{
		{"unreduced DFS", mpbasset.Options{Search: mpbasset.SearchUnreduced}},
		{"SPOR", mpbasset.Options{Search: mpbasset.SearchSPOR}},
		{"SPOR + quorum-split", mpbasset.Options{Search: mpbasset.SearchSPOR, Split: mpbasset.SplitQuorum}},
	} {
		res, err := mpbasset.Check(p, o.opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s verdict=%-9s states=%-4d events=%-4d deadlocks=%d\n",
			o.label, res.Verdict, res.Stats.States, res.Stats.Events, res.Stats.Deadlocks)
	}
}
