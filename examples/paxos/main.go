// Paxos example: verify consensus for the paper's (2,3,1) setting across
// modeling styles and reduction strategies, then debug the paper's "Faulty
// Paxos" (learners that do not compare ballots) and print the
// counterexample trace.
//
// Run with:
//
//	go run ./examples/paxos
package main

import (
	"fmt"
	"log"
	"time"

	"mpbasset"
	"mpbasset/internal/protocols/paxos"
)

func main() {
	cfg := paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1}

	fmt.Println("== Paxos (2,3,1), quorum vs single-message modeling (paper Table I) ==")
	for _, m := range []paxos.Model{paxos.ModelQuorum, paxos.ModelSingle} {
		c := cfg
		c.Model = m
		p, err := paxos.New(c)
		if err != nil {
			log.Fatal(err)
		}
		res, err := mpbasset.Check(p, mpbasset.Options{MaxDuration: 5 * time.Minute})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s model: %-9s states=%-8d time=%s\n",
			m, res.Verdict, res.Stats.States, res.Stats.Duration.Round(time.Millisecond))
	}

	fmt.Println("\n== Transition refinement on the quorum model (paper Table II) ==")
	p, err := paxos.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, split := range []mpbasset.SplitStrategy{
		mpbasset.SplitNone, mpbasset.SplitReply, mpbasset.SplitQuorum, mpbasset.SplitCombined,
	} {
		res, err := mpbasset.Check(p, mpbasset.Options{Split: split, MaxDuration: 5 * time.Minute})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-15s %-9s states=%-8d events=%d\n", split, res.Verdict, res.Stats.States, res.Stats.Events)
	}

	fmt.Println("\n== Symmetry reduction (acceptors and learners are interchangeable) ==")
	res, err := mpbasset.Check(p, mpbasset.Options{SymmetryRoles: cfg.Roles(), MaxDuration: 5 * time.Minute})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  SPOR+symmetry: %-9s states=%d\n", res.Verdict, res.Stats.States)

	fmt.Println("\n== Debugging Faulty Paxos (learners do not compare values) ==")
	fcfg := cfg
	fcfg.Faulty = true
	fp, err := paxos.New(fcfg)
	if err != nil {
		log.Fatal(err)
	}
	fres, err := mpbasset.Check(fp, mpbasset.Options{Search: mpbasset.SearchBFS, TrackTrace: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  verdict: %s after %d states\n", fres.Verdict, fres.Stats.States)
	if fres.Violation != nil {
		fmt.Printf("  violation: %v\n", fres.Violation)
		fmt.Printf("  shortest counterexample (%d steps):\n", len(fres.Trace))
		fmt.Print(indent(fres.TraceString()))
	}
}

func indent(s string) string {
	out := ""
	for _, line := range splitLines(s) {
		out += "    " + line + "\n"
	}
	return out
}

func splitLines(s string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			lines = append(lines, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		lines = append(lines, s[start:])
	}
	return lines
}
