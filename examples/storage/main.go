// Storage example: verify regularity of the ABD-style register, show the
// reply-split refinement paying off on the two-reader setting, and find
// the counterexample against the paper's deliberately wrong specification
// ("a read completing after a write must return it even if concurrent").
//
// Run with:
//
//	go run ./examples/storage
package main

import (
	"fmt"
	"log"
	"time"

	"mpbasset"
	"mpbasset/internal/protocols/storage"
)

func main() {
	fmt.Println("== Regular storage (3,1): read/write quorums over 3 base objects ==")
	p, err := storage.New(storage.Config{Objects: 3, Readers: 1})
	if err != nil {
		log.Fatal(err)
	}
	res, err := mpbasset.Check(p, mpbasset.Options{MaxDuration: 2 * time.Minute})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  regularity: %-9s states=%-7d time=%s\n",
		res.Verdict, res.Stats.States, res.Stats.Duration.Round(time.Millisecond))

	fmt.Println("\n== Wrong regularity (3,2): the spec the protocol does NOT satisfy ==")
	wp, err := storage.New(storage.Config{Objects: 3, Readers: 2, WrongRegularity: true})
	if err != nil {
		log.Fatal(err)
	}
	for _, split := range []mpbasset.SplitStrategy{mpbasset.SplitNone, mpbasset.SplitReply} {
		res, err := mpbasset.Check(wp, mpbasset.Options{Split: split, MaxDuration: 2 * time.Minute})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %-9s states=%-7d time=%s\n",
			split, res.Verdict, res.Stats.States, res.Stats.Duration.Round(time.Millisecond))
	}

	fmt.Println("\n== The counterexample, step by step ==")
	res, err = mpbasset.Check(wp, mpbasset.Options{Search: mpbasset.SearchBFS, TrackTrace: true})
	if err != nil {
		log.Fatal(err)
	}
	if res.Violation != nil {
		fmt.Printf("  violation: %v\n", res.Violation)
		fmt.Print(res.TraceString())
	}
}
