// Byzantine multicast example: verify Echo Multicast agreement under the
// paper's attack strategies, then exceed the fault threshold (the paper's
// "wrong agreement" setting (2,1,2,1)) and watch the model checker produce
// the equivocation counterexample.
//
// Run with:
//
//	go run ./examples/byzantine
package main

import (
	"fmt"
	"log"
	"time"

	"mpbasset"
	"mpbasset/internal/protocols/multicast"
)

func main() {
	fmt.Println("== Echo Multicast under attack (paper §V-A strategies) ==")
	safe := []multicast.Config{
		{HonestReceivers: 3, HonestInitiators: 0, ByzantineReceivers: 1, ByzantineInitiators: 1},
		{HonestReceivers: 2, HonestInitiators: 1, ByzantineReceivers: 0, ByzantineInitiators: 1},
		{HonestReceivers: 3, HonestInitiators: 1, ByzantineReceivers: 1, ByzantineInitiators: 1},
	}
	for _, cfg := range safe {
		p, err := multicast.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := mpbasset.Check(p, mpbasset.Options{MaxDuration: 2 * time.Minute})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s threshold=%d  %-9s states=%-7d time=%s\n",
			cfg.Setting(), cfg.Threshold(), res.Verdict, res.Stats.States,
			res.Stats.Duration.Round(time.Millisecond))
	}

	fmt.Println("\n== Exceeding the threshold: (2,1,2,1) with 2 Byzantine receivers, f=1 ==")
	cfg := multicast.Config{HonestReceivers: 2, HonestInitiators: 1, ByzantineReceivers: 2, ByzantineInitiators: 1}
	p, err := multicast.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := mpbasset.Check(p, mpbasset.Options{Search: mpbasset.SearchBFS, TrackTrace: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  verdict: %s after %d states\n", res.Verdict, res.Stats.States)
	if res.Violation != nil {
		fmt.Printf("  violation: %v\n", res.Violation)
		fmt.Println("  attack trace (equivocate, double-sign, commit both):")
		fmt.Print(res.TraceString())
	}
}
