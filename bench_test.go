// Benchmarks regenerating the paper's evaluation: every row and column of
// Table I (quorum semantics) and Table II (transition refinement), plus
// ablations over the design choices called out in DESIGN.md (seed
// heuristics, best-seed search, state stores, symmetry reduction) and the
// store-tier sweep (collapse compression, lossy bitstate hashing).
//
// Each benchmark iteration performs one full model-checking run and
// reports the explored state count as the "states" metric — the number the
// paper's tables print. Wall-clock per op is the "time" column analogue.
//
// Cells that the paper reports as timeouts (stateless DPOR on Paxos) are
// capped by a budget (default 15s, override MPBASSET_BENCH_BUDGET) and
// report the states explored within it, like the paper's ">16,087,468"
// lower bounds. Set MPBASSET_PAPER=1 to include the paper-scale Echo
// Multicast (3,1,1,1) row of Table II.
package mpbasset_test

import (
	"fmt"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"mpbasset"
	"mpbasset/internal/core"
	"mpbasset/internal/dpor"
	"mpbasset/internal/eval"
	"mpbasset/internal/explore"
	"mpbasset/internal/liveness"
	"mpbasset/internal/por"
	"mpbasset/internal/protocols/multicast"
	"mpbasset/internal/protocols/paxos"
	"mpbasset/internal/protocols/storage"
	"mpbasset/internal/refine"
)

func benchBudget() time.Duration {
	if s := os.Getenv("MPBASSET_BENCH_BUDGET"); s != "" {
		if d, err := time.ParseDuration(s); err == nil {
			return d
		}
	}
	return 15 * time.Second
}

func paperScale() bool { return os.Getenv("MPBASSET_PAPER") == "1" }

func reportCell(b *testing.B, c eval.Cell) {
	b.Helper()
	if c.Err != nil {
		b.Fatal(c.Err)
	}
	b.ReportMetric(float64(c.States), "states")
	b.ReportMetric(float64(c.Events), "events")
}

// benchTarget couples a table line with its protocol constructors.
type benchTarget struct {
	name    string
	quorum  func() (*core.Protocol, error)
	single  func() (*core.Protocol, error)
	dporCol bool // false: the paper used unreduced stateful search instead
}

func benchTargets(b *testing.B) []benchTarget {
	b.Helper()
	mk := func(p *core.Protocol, err error) func() (*core.Protocol, error) {
		return func() (*core.Protocol, error) { return p, err }
	}
	paxosCfg := func(m paxos.Model, faulty bool) func() (*core.Protocol, error) {
		return mk(paxos.New(paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1, Model: m, Faulty: faulty}))
	}
	mcast := func(hr, hi, br, bi int, m multicast.Model) func() (*core.Protocol, error) {
		return mk(multicast.New(multicast.Config{
			HonestReceivers: hr, HonestInitiators: hi,
			ByzantineReceivers: br, ByzantineInitiators: bi, Model: m,
		}))
	}
	store := func(objs, readers int, wrong bool, m storage.Model) func() (*core.Protocol, error) {
		return mk(storage.New(storage.Config{Objects: objs, Readers: readers, WrongRegularity: wrong, Model: m}))
	}
	return []benchTarget{
		{"Paxos_231", paxosCfg(paxos.ModelQuorum, false), paxosCfg(paxos.ModelSingle, false), true},
		{"FaultyPaxos_231", paxosCfg(paxos.ModelQuorum, true), paxosCfg(paxos.ModelSingle, true), true},
		{"Multicast_3011", mcast(3, 0, 1, 1, multicast.ModelQuorum), mcast(3, 0, 1, 1, multicast.ModelSingle), true},
		{"Multicast_2101", mcast(2, 1, 0, 1, multicast.ModelQuorum), mcast(2, 1, 0, 1, multicast.ModelSingle), true},
		{"Multicast_2121_wrong", mcast(2, 1, 2, 1, multicast.ModelQuorum), mcast(2, 1, 2, 1, multicast.ModelSingle), true},
		{"Storage_31", store(3, 1, false, storage.ModelQuorum), store(3, 1, false, storage.ModelSingle), false},
		{"Storage_32_wrong", store(3, 2, true, storage.ModelQuorum), store(3, 2, true, storage.ModelSingle), false},
	}
}

// BenchmarkTable1 regenerates the three columns of the paper's Table I for
// every row.
func BenchmarkTable1(b *testing.B) {
	opts := eval.Options{Budget: benchBudget()}
	for _, tg := range benchTargets(b) {
		tg := tg
		baseline := "NoQuorumDPOR"
		if !tg.dporCol {
			baseline = "NoQuorumUnreduced"
		}
		b.Run(tg.name+"/"+baseline, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := tg.single()
				if err != nil {
					b.Fatal(err)
				}
				var c eval.Cell
				if tg.dporCol {
					c = eval.RunDPOR(baseline, p, opts)
				} else {
					c = eval.RunUnreduced(baseline, p, opts)
				}
				reportCell(b, c)
			}
		})
		b.Run(tg.name+"/NoQuorumSPOR", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := tg.single()
				if err != nil {
					b.Fatal(err)
				}
				reportCell(b, eval.RunSPOR("NoQuorumSPOR", p, opts))
			}
		})
		b.Run(tg.name+"/QuorumSPOR", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := tg.quorum()
				if err != nil {
					b.Fatal(err)
				}
				reportCell(b, eval.RunSPOR("QuorumSPOR", p, opts))
			}
		})
	}
}

// BenchmarkTable2 regenerates the four columns of the paper's Table II:
// all quorum models, SPOR, with the four split strategies.
func BenchmarkTable2(b *testing.B) {
	opts := eval.Options{Budget: benchBudget()}
	targets := benchTargets(b)
	if paperScale() {
		targets = append(targets, benchTarget{
			name: "Multicast_3111",
			quorum: func() (*core.Protocol, error) {
				return multicast.New(multicast.Config{HonestReceivers: 3, HonestInitiators: 1, ByzantineReceivers: 1, ByzantineInitiators: 1})
			},
		})
	}
	for _, tg := range targets {
		tg := tg
		for _, strat := range refine.Strategies() {
			strat := strat
			b.Run(fmt.Sprintf("%s/%s", tg.name, strat), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					p, err := tg.quorum()
					if err != nil {
						b.Fatal(err)
					}
					sp, err := refine.Split(p, strat)
					if err != nil {
						b.Fatal(err)
					}
					reportCell(b, eval.RunSPOR(strat.String(), sp, opts))
				}
			})
		}
	}
}

// BenchmarkAblation measures the design choices DESIGN.md calls out.
func BenchmarkAblation(b *testing.B) {
	newPaxos := func(b *testing.B) *core.Protocol {
		p, err := paxos.New(paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1})
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
	run := func(b *testing.B, p *core.Protocol, o explore.Options) {
		o.MaxDuration = benchBudget()
		if o.Store == nil {
			o.Store = explore.NewHashStore()
		}
		res, err := explore.DFS(p, o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Stats.States), "states")
	}

	b.Run("POR/off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, newPaxos(b), explore.Options{})
		}
	})
	b.Run("POR/firstSeed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := newPaxos(b)
			exp, err := por.NewExpander(p)
			if err != nil {
				b.Fatal(err)
			}
			run(b, p, explore.Options{Expander: exp})
		}
	})
	b.Run("POR/bestSeed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := newPaxos(b)
			exp, err := por.NewExpander(p)
			if err != nil {
				b.Fatal(err)
			}
			exp.BestSeed = true
			run(b, p, explore.Options{Expander: exp})
		}
	})
	b.Run("Store/exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, newPaxos(b), explore.Options{Store: explore.NewExactStore()})
		}
	})
	b.Run("Store/hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, newPaxos(b), explore.Options{Store: explore.NewHashStore()})
		}
	})
	b.Run("Symmetry/on", func(b *testing.B) {
		cfg := paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1}
		for i := 0; i < b.N; i++ {
			p, err := paxos.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			res, err := mpbasset.Check(p, mpbasset.Options{
				Search:        mpbasset.SearchUnreduced,
				SymmetryRoles: cfg.Roles(),
				MaxDuration:   benchBudget(),
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Stats.States), "states")
		}
	})
}

// BenchmarkStoreTier sweeps the visited-store tiers on the (3,1) regular
// storage model under SPOR — the eval store-tier table's first row as Go
// benchmarks. The exact tiers (hash, exact, and their collapse-compressed
// variants) explore the identical state space, so states/op is constant
// and time/op isolates the per-state store cost; the bitstate cell runs
// the lossy tier at its default sizing, where no state happens to be
// omitted on this model, and time/op prices the k probe hashes.
func BenchmarkStoreTier(b *testing.B) {
	newStorage := func(b *testing.B) *core.Protocol {
		p, err := storage.New(storage.Config{Objects: 3, Readers: 1})
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
	run := func(b *testing.B, p *core.Protocol, o explore.Options) {
		exp, err := por.NewExpander(p)
		if err != nil {
			b.Fatal(err)
		}
		o.Expander = exp
		o.MaxDuration = benchBudget()
		res, err := explore.DFS(p, o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Stats.States), "states")
	}
	b.Run("hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, newStorage(b), explore.Options{Store: explore.NewHashStore()})
		}
	})
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, newStorage(b), explore.Options{Store: explore.NewExactStore()})
		}
	})
	b.Run("collapse-hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, newStorage(b), explore.Options{
				Store: explore.NewHashStore(),
				Canon: explore.NewCollapser().Canon,
			})
		}
	})
	b.Run("collapse-exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, newStorage(b), explore.Options{
				Store: explore.NewExactStore(),
				Canon: explore.NewCollapser().Canon,
			})
		}
	})
	b.Run("bitstate", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, newStorage(b), explore.Options{Store: explore.NewBitstateStore(0, 0)})
		}
	})
}

// BenchmarkParallelBFS compares the frontier-parallel BFS engine across
// worker-pool sizes on the three bundled protocols, SPOR-reduced with the
// sharded concurrent store — the configuration mpcheck -workers runs. All
// worker counts explore the identical state space (the engine is
// deterministic), so states/op is constant and time/op isolates the
// parallel speedup. Wall-clock gains need GOMAXPROCS > 1; on a single
// hardware thread the worker counts merely measure the engine's overhead.
func BenchmarkParallelBFS(b *testing.B) {
	targets := []struct {
		name string
		mk   func() (*core.Protocol, error)
	}{
		{"Paxos_231", func() (*core.Protocol, error) {
			return paxos.New(paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1})
		}},
		{"Multicast_3111", func() (*core.Protocol, error) {
			return multicast.New(multicast.Config{HonestReceivers: 3, HonestInitiators: 1, ByzantineReceivers: 1, ByzantineInitiators: 1})
		}},
		{"Storage_31", func() (*core.Protocol, error) {
			return storage.New(storage.Config{Objects: 3, Readers: 1})
		}},
	}
	for _, tg := range targets {
		tg := tg
		for _, workers := range []int{1, 2, 4, 8} {
			workers := workers
			b.Run(fmt.Sprintf("%s/workers-%d", tg.name, workers), func(b *testing.B) {
				p, err := tg.mk()
				if err != nil {
					b.Fatal(err)
				}
				exp, err := por.NewExpander(p)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := explore.ParallelBFS(p, explore.Options{
						Expander:    exp,
						Workers:     workers,
						Store:       explore.NewShardedHashStore(),
						MaxDuration: benchBudget(),
					})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(res.Stats.States), "states")
					b.ReportMetric(float64(res.Stats.Events), "events")
				}
			})
		}
	}
}

// BenchmarkParallelDFS compares the speculative parallel DFS engine across
// worker-pool sizes and steal depths on the bundled protocols,
// SPOR-reduced with the sharded concurrent store — the configuration
// mpcheck -workers runs for the DFS searches. Every configuration commits
// the identical state space in the identical order (the engine is
// bit-identical to sequential DFS), so states/op is constant and time/op
// isolates the speculation win: the commit walk spends its time on cheap
// store probes while the workers precompute Enabled/Expand/Execute and the
// invariant checks. Wall-clock gains need GOMAXPROCS > 1.
func BenchmarkParallelDFS(b *testing.B) {
	targets := []struct {
		name string
		mk   func() (*core.Protocol, error)
	}{
		{"Paxos_231", func() (*core.Protocol, error) {
			return paxos.New(paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1})
		}},
		{"Multicast_3111", func() (*core.Protocol, error) {
			return multicast.New(multicast.Config{HonestReceivers: 3, HonestInitiators: 1, ByzantineReceivers: 1, ByzantineInitiators: 1})
		}},
		{"Storage_31", func() (*core.Protocol, error) {
			return storage.New(storage.Config{Objects: 3, Readers: 1})
		}},
	}
	type cfg struct {
		name       string
		workers    int
		stealDepth int
	}
	cfgs := []cfg{
		{"seq", 0, 0}, // sequential DFS baseline
		{"workers-1", 1, 0},
		{"workers-4", 4, 0},
		{"workers-8", 8, 0},
		{"workers-4-steal-2", 4, 2},
		{"workers-4-steal-32", 4, 32},
	}
	for _, tg := range targets {
		for _, c := range cfgs {
			b.Run(fmt.Sprintf("%s/%s", tg.name, c.name), func(b *testing.B) {
				p, err := tg.mk()
				if err != nil {
					b.Fatal(err)
				}
				exp, err := por.NewExpander(p)
				if err != nil {
					b.Fatal(err)
				}
				engine := explore.DFS
				if c.workers > 0 {
					engine = explore.ParallelDFS
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := engine(p, explore.Options{
						Expander:    exp,
						Workers:     c.workers,
						StealDepth:  c.stealDepth,
						Store:       explore.NewShardedHashStore(),
						MaxDuration: benchBudget(),
					})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(res.Stats.States), "states")
					b.ReportMetric(float64(res.Stats.Events), "events")
				}
			})
		}
	}
}

// BenchmarkParallelDPOR compares the speculative parallel DPOR engine
// across worker-pool sizes and steal depths on the bundled single-message
// models — the configuration mpcheck -search dpor -workers runs. Every
// configuration commits the identical stateless exploration (the engine is
// bit-identical to sequential DPOR), so on runs that complete within the
// budget states/op is constant and time/op isolates the speculation win:
// the commit walk consumes worker-built expansion records instead of
// re-executing events. Wall-clock gains need GOMAXPROCS > 1.
func BenchmarkParallelDPOR(b *testing.B) {
	targets := []struct {
		name string
		mk   func() (*core.Protocol, error)
	}{
		{"Paxos_131_single", func() (*core.Protocol, error) {
			return paxos.New(paxos.Config{Proposers: 1, Acceptors: 3, Learners: 1, Model: paxos.ModelSingle})
		}},
		{"Multicast_2101_single", func() (*core.Protocol, error) {
			return multicast.New(multicast.Config{HonestReceivers: 2, HonestInitiators: 1, ByzantineInitiators: 1, Model: multicast.ModelSingle})
		}},
		{"Storage_31_single", func() (*core.Protocol, error) {
			return storage.New(storage.Config{Objects: 3, Readers: 1, Model: storage.ModelSingle})
		}},
	}
	type cfg struct {
		name       string
		workers    int
		stealDepth int
	}
	cfgs := []cfg{
		{"seq", 0, 0}, // sequential DPOR baseline
		{"workers-1", 1, 0},
		{"workers-4", 4, 0},
		{"workers-8", 8, 0},
		{"workers-4-steal-2", 4, 2},
		{"workers-4-steal-32", 4, 32},
	}
	for _, tg := range targets {
		for _, c := range cfgs {
			b.Run(fmt.Sprintf("%s/%s", tg.name, c.name), func(b *testing.B) {
				p, err := tg.mk()
				if err != nil {
					b.Fatal(err)
				}
				engine := dpor.Explore
				if c.workers > 0 {
					engine = dpor.ExploreParallel
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := engine(p, explore.Options{
						Workers:     c.workers,
						StealDepth:  c.stealDepth,
						MaxDuration: benchBudget(),
					})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(res.Stats.States), "states")
					b.ReportMetric(float64(res.Stats.Events), "events")
				}
			})
		}
	}
}

// BenchmarkFrontierScheduler compares ParallelBFS's two intra-level
// schedulers on skewed-frontier workloads — frontiers whose nodes differ
// widely in expansion cost, where a single shared claim index serializes
// the pool behind its cache line and per-key stripe locks dominate:
//
//   - single-index: the original scheduler (one atomic claim per node,
//     one stripe lock per successor), kept as the baseline;
//   - work-stealing: chunked claims over per-worker spans with half-range
//     stealing, successor keys flushed through SeenBatch (one stripe lock
//     per ~64 keys).
//
// Deep Paxos (thousands of BFS levels with narrow-then-wide frontiers and
// quorum-enumeration spikes) and combined-split refined multicast (many
// refined transitions of widely varying enumeration cost per node) are the
// skew generators. Both schedulers explore the identical state space, so
// states/op is constant and time/op isolates the scheduling cost; the
// work-stealing win materializes at 4–8 workers on multi-core hardware
// (GOMAXPROCS > 1 — on a single hardware thread both schedulers only
// measure their bookkeeping overhead).
func BenchmarkFrontierScheduler(b *testing.B) {
	targets := []struct {
		name string
		mk   func() (*core.Protocol, error)
	}{
		{"DeepPaxos_231", func() (*core.Protocol, error) {
			return paxos.New(paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1})
		}},
		{"RefinedMulticast_3111", func() (*core.Protocol, error) {
			p, err := multicast.New(multicast.Config{
				HonestReceivers: 3, HonestInitiators: 1,
				ByzantineReceivers: 1, ByzantineInitiators: 1,
			})
			if err != nil {
				return nil, err
			}
			return refine.Split(p, refine.Combined)
		}},
	}
	scheds := []struct {
		name  string
		sched explore.Sched
	}{
		{"single-index", explore.SchedSingleIndex},
		{"work-stealing", explore.SchedWorkStealing},
	}
	for _, tg := range targets {
		p, err := tg.mk()
		if err != nil {
			b.Fatal(err)
		}
		exp, err := por.NewExpander(p)
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range []int{4, 8} {
			for _, sc := range scheds {
				b.Run(fmt.Sprintf("%s/workers-%d/%s", tg.name, workers, sc.name), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						res, err := explore.ParallelBFS(p, explore.Options{
							Expander:    exp,
							Workers:     workers,
							Sched:       sc.sched,
							Store:       explore.NewShardedHashStore(),
							MaxDuration: benchBudget(),
						})
						if err != nil {
							b.Fatal(err)
						}
						b.ReportMetric(float64(res.Stats.States), "states")
					}
				})
			}
		}
	}
}

// BenchmarkSpillStoreOverhead quantifies the cost of the spill-to-disk
// visited store against the in-memory baseline on the skewed deep
// workloads of BenchmarkFrontierScheduler (deep Paxos, combined-split
// refined multicast), SPOR-reduced with 4 frontier-parallel workers — the
// configuration a beyond-RAM run would use. The budgets force different
// spill pressure: "unbounded" never touches disk, "1MiB" spills the tail
// of a large run, "64KiB" keeps almost the whole visited set on disk, so
// the three time/op columns trace the overhead curve. All configurations
// explore the identical state space (states/op is constant); spillruns/op
// reports the disk activity.
func BenchmarkSpillStoreOverhead(b *testing.B) {
	targets := []struct {
		name string
		mk   func() (*core.Protocol, error)
	}{
		{"DeepPaxos_231", func() (*core.Protocol, error) {
			return paxos.New(paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1})
		}},
		{"RefinedMulticast_3111", func() (*core.Protocol, error) {
			p, err := multicast.New(multicast.Config{
				HonestReceivers: 3, HonestInitiators: 1,
				ByzantineReceivers: 1, ByzantineInitiators: 1,
			})
			if err != nil {
				return nil, err
			}
			return refine.Split(p, refine.Combined)
		}},
	}
	budgets := []struct {
		name  string
		bytes int64
	}{
		{"unbounded", 0},
		{"budget-1MiB", 1 << 20},
		{"budget-64KiB", 64 << 10},
	}
	for _, tg := range targets {
		p, err := tg.mk()
		if err != nil {
			b.Fatal(err)
		}
		exp, err := por.NewExpander(p)
		if err != nil {
			b.Fatal(err)
		}
		for _, bud := range budgets {
			b.Run(fmt.Sprintf("%s/%s", tg.name, bud.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					opts := explore.Options{
						Expander:    exp,
						Workers:     4,
						MaxDuration: benchBudget(),
					}
					var spill *explore.SpillStore
					if bud.bytes > 0 {
						spill, err = explore.NewSpillStore(explore.SpillConfig{BudgetBytes: bud.bytes, Dir: b.TempDir()})
						if err != nil {
							b.Fatal(err)
						}
						opts.Store = spill
					} else {
						opts.Store = explore.NewShardedHashStore()
					}
					res, err := explore.ParallelBFS(p, opts)
					if err != nil {
						b.Fatal(err)
					}
					if spill != nil {
						if err := spill.Close(); err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(float64(res.Stats.States), "states")
					b.ReportMetric(float64(res.Stats.SpillRuns), "spillruns")
				}
			})
		}
	}
}

// BenchmarkShardedStore isolates the visited-set stores: the sequential
// stores single-threaded versus the sharded store hammered by GOMAXPROCS
// goroutines (b.RunParallel), on a shared synthetic key stream.
func BenchmarkShardedStore(b *testing.B) {
	mkKeys := func(n int) []string {
		keys := make([]string, n)
		for i := range keys {
			keys[i] = fmt.Sprintf("proc0:val%d|proc1:val%d|bag{m%d}", i, i/2, i%97)
		}
		return keys
	}
	const keySpace = 1 << 16
	keys := mkKeys(keySpace)
	b.Run("exact-sequential", func(b *testing.B) {
		store := explore.NewExactStore()
		for i := 0; i < b.N; i++ {
			store.Seen(keys[i%keySpace])
		}
	})
	b.Run("hashed-sequential", func(b *testing.B) {
		store := explore.NewHashStore()
		for i := 0; i < b.N; i++ {
			store.Seen(keys[i%keySpace])
		}
	})
	b.Run("sharded-exact-parallel", func(b *testing.B) {
		store := explore.NewShardedExactStore()
		var ctr int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := int(atomic.AddInt64(&ctr, 1))
				store.Seen(keys[i%keySpace])
			}
		})
	})
	b.Run("sharded-hashed-parallel", func(b *testing.B) {
		store := explore.NewShardedHashStore()
		var ctr int64
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				i := int(atomic.AddInt64(&ctr, 1))
				store.Seen(keys[i%keySpace])
			}
		})
	})
	// The batched fast path ParallelBFS workers use: 64 keys per SeenBatch
	// call, so each stripe lock is taken once per batch rather than once
	// per key.
	for _, mode := range []struct {
		name string
		mk   func() *explore.ShardedStore
	}{
		{"sharded-exact-batch64-parallel", explore.NewShardedExactStore},
		{"sharded-hashed-batch64-parallel", explore.NewShardedHashStore},
	} {
		b.Run(mode.name, func(b *testing.B) {
			store := mode.mk()
			const batch = 64
			var ctr int64
			b.RunParallel(func(pb *testing.PB) {
				buf := make([]string, 0, batch)
				for pb.Next() {
					i := int(atomic.AddInt64(&ctr, 1))
					buf = append(buf, keys[i%keySpace])
					if len(buf) == batch {
						store.SeenBatch(buf)
						buf = buf[:0]
					}
				}
				if len(buf) > 0 {
					store.SeenBatch(buf)
				}
			})
		})
	}
}

// BenchmarkAnalysisExample keeps the §II-C numbers honest in CI.
func BenchmarkAnalysisExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, penalty := eval.SmallestPaxosExample()
		if penalty.Int64() != 169 {
			b.Fatalf("penalty = %s, want 169", penalty)
		}
	}
}

// BenchmarkNDFS measures the liveness cells: each bundled protocol's
// eventuality property under nested DFS, unreduced and SPOR-reduced, plus
// the weakly fair full-graph product (Choueka monitor copies). States/op is
// the explored product size — constant per configuration, since the nested
// engines are deterministic.
func BenchmarkNDFS(b *testing.B) {
	opts := eval.Options{Budget: benchBudget()}
	targets := []struct {
		name  string
		build func() (*core.Protocol, *liveness.Property, error)
	}{
		{"Paxos_231_decides", func() (*core.Protocol, *liveness.Property, error) {
			cfg := paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1}
			p, err := paxos.New(cfg)
			return p, paxos.Decides(cfg), err
		}},
		{"Multicast_2101_delivers", func() (*core.Protocol, *liveness.Property, error) {
			cfg := multicast.Config{HonestReceivers: 2, HonestInitiators: 1, ByzantineReceivers: 0, ByzantineInitiators: 1}
			p, err := multicast.New(cfg)
			return p, multicast.Delivers(cfg), err
		}},
		{"Storage_31_reads_complete", func() (*core.Protocol, *liveness.Property, error) {
			cfg := storage.Config{Objects: 3, Readers: 1}
			p, err := storage.New(cfg)
			return p, storage.ReadsComplete(cfg), err
		}},
	}
	cols := []struct {
		name    string
		reduced bool
		fair    bool
	}{
		{"unreduced", false, false},
		{"SPOR", true, false},
		{"weakly-fair", false, true},
	}
	for _, tg := range targets {
		for _, col := range cols {
			b.Run(tg.name+"/"+col.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					p, prop, err := tg.build()
					if err != nil {
						b.Fatal(err)
					}
					prop.WeakFair = col.fair
					reportCell(b, eval.RunNDFS(col.name, p, prop, col.reduced, opts))
				}
			})
		}
	}
}
