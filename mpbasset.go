// Package mpbasset is a Go reproduction of the MP-Basset model checker
// from Bokor, Kinder, Serafini and Suri, "Efficient Model Checking of
// Fault-Tolerant Distributed Protocols" (DSN 2011): explicit-state model
// checking of message-passing protocols with quorum transitions, transition
// refinement (quorum-split and reply-split), static and dynamic
// partial-order reduction, and role-based symmetry reduction.
//
// The package is the high-level facade over the building blocks in
// internal/: define a protocol with core.Protocol (or use the bundled
// Paxos, Echo Multicast and regular-storage models under
// internal/protocols), then verify it:
//
//	p, err := paxos.New(paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1})
//	...
//	res, err := mpbasset.Check(p, mpbasset.Options{Search: mpbasset.SearchSPOR})
//	fmt.Println(res.Verdict, res.Stats.States)
//
// Setting Options.Workers switches exploration to the frontier-parallel
// BFS engine backed by a sharded concurrent visited-state store: each BFS
// level is expanded by a worker pool and committed by a deterministic
// in-order merge, so verdicts, state counts and counterexamples are
// reproducible and identical to the sequential search for any worker
// count. Parallel search is sound for the reduced searches because the
// expanders and canonicalizers are stateless/read-only, and — like every
// engine here — it enforces the ignoring proviso, so partial-order
// reduction stays sound on cyclic state graphs too: DFS re-expands states
// whose reduced expansion would close a cycle on its stack, the BFS
// engines re-expand states whose reduced expansion discovers nothing that
// was unvisited when their level began (see Result.Stats.ProvisoExpansions).
//
// See the examples/ directory for complete programs and cmd/mpcheck for
// the command-line interface.
package mpbasset

import (
	"fmt"
	"time"

	"mpbasset/internal/core"
	"mpbasset/internal/dpor"
	"mpbasset/internal/explore"
	"mpbasset/internal/por"
	"mpbasset/internal/refine"
	"mpbasset/internal/symmetry"
)

// Re-exported core types, so that typical users only import this package
// plus a protocol package.
type (
	// Protocol is a message-passing protocol model (see internal/core).
	Protocol = core.Protocol
	// Transition is a guarded atomic event of one process.
	Transition = core.Transition
	// Message is an in-flight message.
	Message = core.Message
	// ProcessID identifies a process.
	ProcessID = core.ProcessID
	// Result is the outcome of a search.
	Result = explore.Result
	// Verdict classifies a search outcome.
	Verdict = explore.Verdict
	// SplitStrategy selects a transition-refinement strategy.
	SplitStrategy = refine.Strategy
)

// Search outcomes.
const (
	VerdictVerified = explore.VerdictVerified
	VerdictViolated = explore.VerdictViolated
	VerdictLimit    = explore.VerdictLimit
)

// Split strategies (paper §III: Table II's unsplit / reply-split /
// quorum-split / combined-split).
const (
	SplitNone     = refine.None
	SplitReply    = refine.Reply
	SplitQuorum   = refine.Quorum
	SplitCombined = refine.Combined
)

// Search selects a search engine.
type Search int

const (
	// SearchSPOR is stateful DFS with static partial-order reduction (the
	// paper's MP-LPOR analogue) — the default.
	SearchSPOR Search = iota + 1
	// SearchUnreduced is plain stateful DFS.
	SearchUnreduced
	// SearchBFS is stateful BFS (shortest counterexamples). Safe to
	// combine with reduction on any model: the queue variant of the
	// ignoring proviso keeps POR sound on cyclic state graphs.
	SearchBFS
	// SearchStateless is depth-first search without a visited set.
	SearchStateless
	// SearchDPOR is stateless search with dynamic partial-order reduction
	// (single-message models only, as in Basset).
	SearchDPOR
)

// Options configures Check.
type Options struct {
	// Search selects the engine; default SearchSPOR.
	Search Search
	// Split applies a transition refinement before checking; default
	// SplitNone. Refinement never changes the state graph (Theorem 2),
	// only the reduction.
	Split SplitStrategy
	// SymmetryRoles enables role-based symmetry reduction over the given
	// groups of interchangeable processes.
	SymmetryRoles [][]ProcessID
	// BestSeed makes the static POR try every seed and keep the smallest
	// ample set.
	BestSeed bool
	// TrackTrace records parent links so BFS can reconstruct
	// counterexamples (DFS variants always can).
	TrackTrace bool
	// Workers > 0 explores with the frontier-parallel BFS engine using
	// that many workers (sharing a sharded concurrent visited-state
	// store); results are deterministic and identical to sequential BFS
	// for any worker count. Applies to SearchSPOR, SearchUnreduced and
	// SearchBFS — sound on every model, cyclic ones included: the
	// expanders and canon functions are stateless/read-only, and the
	// engine enforces the queue variant of the ignoring proviso against
	// the level-start visited snapshot. Stateless and DPOR searches do
	// not support workers.
	//
	// Within each frontier, workers claim contiguous chunks and steal
	// half-ranges from the most-loaded worker when idle, flushing
	// visited-set inserts in batches; ChunkSize and BatchSize tune that
	// scheduler and never change results, only throughput.
	Workers int
	// ChunkSize fixes how many frontier nodes a parallel worker claims
	// per grab; 0 means adaptive (frontier/(workers*8), clamped to
	// [1, 1024]). Only meaningful with Workers > 0.
	ChunkSize int
	// BatchSize is the number of successor keys a parallel worker buffers
	// before a batched visited-set insert (one stripe lock per batch
	// instead of per key); 0 means the default of 64. Only meaningful
	// with Workers > 0.
	BatchSize int
	// ExactStates stores full state keys instead of 128-bit fingerprints
	// (more memory, zero collision risk).
	ExactStates bool
	// MaxStates bounds the number of explored states; 0 = unlimited.
	MaxStates int
	// MaxDuration bounds the wall-clock time; 0 = unlimited.
	MaxDuration time.Duration
}

// Check verifies the protocol's invariant over its full (possibly reduced)
// state space and returns the verdict, statistics, and — for violations —
// a counterexample trace.
func Check(p *Protocol, opts Options) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("mpbasset: nil protocol")
	}
	if opts.Split != SplitNone {
		sp, err := refine.Split(p, opts.Split)
		if err != nil {
			return nil, err
		}
		p = sp
	}
	xo := explore.Options{
		MaxStates:   opts.MaxStates,
		MaxDuration: opts.MaxDuration,
		TrackTrace:  opts.TrackTrace,
		Workers:     opts.Workers,
		ChunkSize:   opts.ChunkSize,
		BatchSize:   opts.BatchSize,
	}
	parallel := opts.Workers > 0
	switch {
	case parallel && opts.ExactStates:
		xo.Store = explore.NewShardedExactStore()
	case parallel:
		xo.Store = explore.NewShardedHashStore()
	case !opts.ExactStates:
		xo.Store = explore.NewHashStore()
	}
	if opts.SymmetryRoles != nil {
		canon, err := symmetry.New(p.N, opts.SymmetryRoles)
		if err != nil {
			return nil, err
		}
		xo.Canon = canon.Canon
	}
	search := opts.Search
	if search == 0 {
		search = SearchSPOR
	}
	stateful := func(sequential func(*core.Protocol, explore.Options) (*explore.Result, error)) (*Result, error) {
		if parallel {
			return explore.ParallelBFS(p, xo)
		}
		return sequential(p, xo)
	}
	switch search {
	case SearchSPOR:
		exp, err := por.NewExpander(p)
		if err != nil {
			return nil, err
		}
		exp.BestSeed = opts.BestSeed
		xo.Expander = exp
		return stateful(explore.DFS)
	case SearchUnreduced:
		return stateful(explore.DFS)
	case SearchBFS:
		return stateful(explore.BFS)
	case SearchStateless:
		if parallel {
			return nil, fmt.Errorf("mpbasset: Workers is not supported by stateless search")
		}
		return explore.StatelessDFS(p, xo)
	case SearchDPOR:
		if parallel {
			return nil, fmt.Errorf("mpbasset: Workers is not supported by DPOR search")
		}
		return dpor.Explore(p, xo)
	default:
		return nil, fmt.Errorf("mpbasset: unknown search %d", search)
	}
}
