// Package mpbasset is a Go reproduction of the MP-Basset model checker
// from Bokor, Kinder, Serafini and Suri, "Efficient Model Checking of
// Fault-Tolerant Distributed Protocols" (DSN 2011): explicit-state model
// checking of message-passing protocols with quorum transitions, transition
// refinement (quorum-split and reply-split), static and dynamic
// partial-order reduction, and role-based symmetry reduction.
//
// The package is the high-level facade over the building blocks in
// internal/: define a protocol with core.Protocol (or use the bundled
// Paxos, Echo Multicast and regular-storage models under
// internal/protocols), then verify it:
//
//	p, err := paxos.New(paxos.Config{Proposers: 2, Acceptors: 3, Learners: 1})
//	...
//	res, err := mpbasset.Check(p, mpbasset.Options{Search: mpbasset.SearchSPOR})
//	fmt.Println(res.Verdict, res.Stats.States)
//
// Setting Options.Workers parallelizes the selected engine: the DFS
// searches (SearchSPOR, SearchUnreduced) run the speculative parallel DFS
// engine over a sharded concurrent visited-state store — workers steal
// unexplored sibling subtrees from the deep end of the search stack and
// expand them ahead of a commit walk that replays the exact sequential
// order — SearchBFS runs the frontier-parallel BFS engine with its
// deterministic per-level merge, and SearchDPOR runs the speculative
// parallel DPOR engine, whose workers claim pending backtrack points and
// precompute the subtrees below them while the commit walk replays
// sequential DPOR verbatim. Either way, verdicts, state counts and
// counterexamples are reproducible and identical to the corresponding
// sequential search for any worker count. Parallel search is sound for the
// reduced searches because the expanders and canonicalizers are
// stateless/read-only, and — like every stateful engine here — it enforces
// the ignoring proviso, so partial-order reduction stays sound on cyclic
// state graphs too: the DFS engines re-expand states whose reduced
// expansion would close a cycle on the search stack, the BFS engines
// re-expand states whose reduced expansion discovers nothing that was
// unvisited when their level began (see Result.Stats.ProvisoExpansions).
//
// Setting Options.StoreBudgetBytes bounds the visited set's memory
// footprint for beyond-RAM state spaces: the search runs over a two-tier
// spill store whose in-memory hot tier flushes sorted runs of 128-bit
// fingerprints to disk (Options.SpillDir) past the budget, again with
// verdicts, statistics and traces bit-identical to the in-memory stores;
// Result.Stats reports the spill activity.
//
// Setting Options.Property switches from safety to liveness checking: the
// DFS searches run nested depth-first search (blue/red, CVWY) over the
// Büchi product of the protocol and the property, reporting a
// counterexample lasso — a finite stem plus an accepting cycle, with runs
// that halt in an accepting deadlock counted via stutter extension — that
// Result.Trace records and explore.ReplayLasso revalidates. Properties are
// acceptance predicates over states (Eventually builds the common
// "goal is eventually reached" form); Property.WeakFair restricts
// counterexamples to weakly fair schedules. Reduction stays sound:
// properties declare which processes they read, transitions of those
// processes are marked visible (ample-set condition C2), and the same
// stack proviso that protects safety search protects the cycle detection.
// Liveness results are deterministic and bit-identical across worker
// counts and stores, exactly like safety results.
//
// See the examples/ directory for complete programs and cmd/mpcheck for
// the command-line interface.
package mpbasset

import (
	"fmt"
	"time"

	"mpbasset/internal/core"
	"mpbasset/internal/dpor"
	"mpbasset/internal/explore"
	"mpbasset/internal/liveness"
	"mpbasset/internal/por"
	"mpbasset/internal/refine"
	"mpbasset/internal/symmetry"
)

// Re-exported core types, so that typical users only import this package
// plus a protocol package.
type (
	// Protocol is a message-passing protocol model (see internal/core).
	Protocol = core.Protocol
	// Transition is a guarded atomic event of one process.
	Transition = core.Transition
	// Message is an in-flight message.
	Message = core.Message
	// ProcessID identifies a process.
	ProcessID = core.ProcessID
	// Result is the outcome of a search.
	Result = explore.Result
	// Verdict classifies a search outcome.
	Verdict = explore.Verdict
	// SplitStrategy selects a transition-refinement strategy.
	SplitStrategy = refine.Strategy
	// Property is a Büchi liveness property: an acceptance predicate over
	// states, optionally under weak fairness (see internal/liveness).
	Property = liveness.Property
	// State is a global protocol state, as passed to property predicates.
	State = core.State
)

// Eventually builds the liveness property "the goal predicate is
// eventually reached": a counterexample is an execution that defers the
// goal forever. reads must list the processes the goal predicate inspects,
// so partial-order reduction stays sound for the property.
var Eventually = liveness.Eventually

// Search outcomes.
const (
	VerdictVerified = explore.VerdictVerified
	VerdictViolated = explore.VerdictViolated
	VerdictLimit    = explore.VerdictLimit
)

// Split strategies (paper §III: Table II's unsplit / reply-split /
// quorum-split / combined-split).
const (
	SplitNone     = refine.None
	SplitReply    = refine.Reply
	SplitQuorum   = refine.Quorum
	SplitCombined = refine.Combined
)

// Search selects a search engine.
type Search int

const (
	// SearchSPOR is stateful DFS with static partial-order reduction (the
	// paper's MP-LPOR analogue) — the default.
	SearchSPOR Search = iota + 1
	// SearchUnreduced is plain stateful DFS.
	SearchUnreduced
	// SearchBFS is stateful BFS (shortest counterexamples). Safe to
	// combine with reduction on any model: the queue variant of the
	// ignoring proviso keeps POR sound on cyclic state graphs.
	SearchBFS
	// SearchStateless is depth-first search without a visited set.
	SearchStateless
	// SearchDPOR is stateless search with dynamic partial-order reduction
	// (single-message models only, as in Basset).
	SearchDPOR
)

// Options configures Check.
type Options struct {
	// Search selects the engine; default SearchSPOR.
	Search Search
	// Split applies a transition refinement before checking; default
	// SplitNone. Refinement never changes the state graph (Theorem 2),
	// only the reduction.
	Split SplitStrategy
	// SymmetryRoles enables role-based symmetry reduction over the given
	// groups of interchangeable processes.
	SymmetryRoles [][]ProcessID
	// BestSeed makes the static POR try every seed and keep the smallest
	// ample set.
	BestSeed bool
	// TrackTrace records parent links so BFS can reconstruct
	// counterexamples (DFS variants always can).
	TrackTrace bool
	// Workers > 0 parallelizes the selected search with that many workers.
	// The DFS searches (SearchSPOR, SearchUnreduced) run the speculative
	// parallel DFS engine over a sharded concurrent visited-state store:
	// workers steal unexplored sibling subtrees from the deep end of the
	// search stack and precompute their expansions, while a commit walk
	// replays the exact sequential DFS order — results are bit-identical
	// to the sequential search for any worker count. SearchBFS runs the
	// frontier-parallel BFS engine (deterministic per-level merge,
	// identical to sequential BFS). SearchDPOR runs the speculative
	// parallel DPOR engine: workers claim pending backtrack points and
	// precompute the subtrees below them, while the commit walk replays
	// sequential DPOR verbatim — again bit-identical for any worker
	// count. All are sound on every model, cyclic ones included: the
	// expanders and canon functions are stateless/read-only, and each
	// stateful engine enforces its variant of the ignoring proviso. Only
	// SearchStateless does not support workers (-workers in the CLIs).
	Workers int
	// ChunkSize fixes how many frontier nodes a parallel BFS worker claims
	// per grab; 0 means adaptive (frontier/(workers*8), clamped to
	// [1, 1024]). Only meaningful with Workers > 0 and SearchBFS; the DFS
	// searches ignore it.
	ChunkSize int
	// BatchSize is the number of successor keys a parallel BFS worker
	// buffers before a batched visited-set insert (one stripe lock per
	// batch instead of per key); 0 means the default of 64. Only
	// meaningful with Workers > 0 and SearchBFS; the DFS searches ignore
	// it.
	BatchSize int
	// StealDepth bounds one stolen subtree's speculation in the parallel
	// DFS and DPOR searches: a worker explores at most this many events
	// below a stolen sibling (or backtrack point) before reporting back
	// and stealing afresh; 0 means the default of 8. It tunes throughput
	// only and never changes results. Only meaningful with Workers > 0
	// and the DFS searches (SearchSPOR, SearchUnreduced) or SearchDPOR;
	// SearchBFS ignores it.
	StealDepth int
	// ExactStates stores full state keys instead of 128-bit fingerprints
	// (more memory, zero collision risk). Incompatible with
	// StoreBudgetBytes: the spill tier stores fingerprints only.
	ExactStates bool
	// StoreBudgetBytes > 0 bounds the visited set's in-memory footprint:
	// the search runs over a two-tier explore.SpillStore whose hot tier
	// spills sorted runs of 128-bit fingerprints to disk when it exceeds
	// the budget, letting runs explore state spaces far beyond RAM.
	// Verdicts, search statistics and traces are bit-identical to the
	// in-memory stores for every stateful search, sequential or parallel;
	// Result.Stats reports the spill activity (SpillRuns, SpillBytes,
	// DiskProbes). Stateless and DPOR searches keep no visited set and
	// reject the option.
	StoreBudgetBytes int64
	// SpillDir is the directory for the spill store's run files; empty
	// means a fresh temporary directory, removed when the check returns.
	// Only meaningful (and only accepted) with StoreBudgetBytes > 0.
	SpillDir string
	// Compress enables collapse-style state compression (-compress): a
	// shared intern table dedupes each process's local-state component and
	// the message-bag component across states, so the canonical key a state
	// contributes to the visited store, the fingerprint hash and the spill
	// tier shrinks to a few decimal component IDs. Exact-mode semantics are
	// unchanged — the compressed mapping is injective, so verdicts, every
	// statistic and the explored state space are bit-identical to the
	// uncompressed run — and counterexample traces are transparently
	// decompressed before Check returns, so trace consumers (Replay, DOT
	// rendering) see full canonical keys. Works with every store tier and
	// every stateful search; incompatible with SymmetryRoles (symmetry
	// installs its own canonicalizer) and rejected by the stateless and
	// DPOR searches, which it could not speed up.
	Compress bool
	// Lossy switches the visited set to an explicitly lossy Spin-style
	// bitstate/hash-compaction store (-lossy): k hash probes per state over
	// a fixed bit array sized by BitstateBytes. Memory never grows past the
	// budget, so coverage sweeps can run far beyond exact-store limits, but
	// distinct states may collide and be silently skipped — a lossy
	// "Verified" is a coverage claim, not a verdict, and Result.Stats
	// reports the bit array's fill ratio and estimated omission probability
	// (BitstateFill, BitstateOmission) so the claim can be judged. A
	// reported violation is still real and its trace replays like any
	// other. Rejected wherever soundness demands an exact visited set:
	// stateless and DPOR searches, liveness properties (Property), and the
	// exact-trace options ExactStates and StoreBudgetBytes.
	Lossy bool
	// BitstateBytes sizes the lossy store's bit array in bytes
	// (-bitstate-bytes); 0 means 64 MiB. Only meaningful (and only
	// accepted) with Lossy.
	BitstateBytes int64
	// MaxStates bounds the number of explored states; 0 = unlimited.
	MaxStates int
	// MaxDuration bounds the wall-clock time; 0 = unlimited.
	MaxDuration time.Duration
	// Property, when non-nil, checks this Büchi liveness property instead
	// of the protocol's safety invariant. Only the DFS searches (SearchSPOR,
	// SearchUnreduced) support it — they run nested depth-first search,
	// parallelized deterministically when Workers > 0 — and the protocol is
	// automatically instrumented for the property (its transitions marked
	// visible) before any reduction is built. A counterexample is a lasso:
	// Result.Trace holds stem + cycle, with Result.CycleLen and
	// Result.Stutter describing the cycle. When Property.WeakFair is set the
	// search ignores reduction and explores the full state graph: the
	// fairness monitor observes every transition, so no transition is
	// invisible in the product and the ample-set condition C2 admits no
	// reduction.
	Property *Property
}

// Check verifies the protocol's invariant over its full (possibly reduced)
// state space and returns the verdict, statistics, and — for violations —
// a counterexample trace.
func Check(p *Protocol, opts Options) (*Result, error) {
	if p == nil {
		return nil, fmt.Errorf("mpbasset: nil protocol")
	}
	if opts.Split != SplitNone {
		sp, err := refine.Split(p, opts.Split)
		if err != nil {
			return nil, err
		}
		p = sp
	}
	if opts.Property != nil {
		switch opts.Search {
		case SearchBFS, SearchStateless, SearchDPOR:
			return nil, fmt.Errorf("mpbasset: Property (-property) requires a DFS search (SearchSPOR or SearchUnreduced): liveness checking runs nested depth-first search")
		}
		// Instrument before the expander is built in runSearch, so the
		// property-visible marks constrain the reduction (C2).
		ip, err := liveness.Instrument(p, opts.Property)
		if err != nil {
			return nil, err
		}
		p = ip
	}
	xo := explore.Options{
		MaxStates:   opts.MaxStates,
		MaxDuration: opts.MaxDuration,
		TrackTrace:  opts.TrackTrace,
		Workers:     opts.Workers,
		ChunkSize:   opts.ChunkSize,
		BatchSize:   opts.BatchSize,
		StealDepth:  opts.StealDepth,
		Property:    opts.Property,
	}
	if opts.SpillDir != "" && opts.StoreBudgetBytes <= 0 {
		return nil, fmt.Errorf("mpbasset: SpillDir (-spill-dir) requires StoreBudgetBytes (-mem-budget): the spill directory is meaningless without a memory budget")
	}
	if opts.BitstateBytes != 0 && !opts.Lossy {
		return nil, fmt.Errorf("mpbasset: BitstateBytes (-bitstate-bytes) requires Lossy (-lossy): the bit-array budget is meaningless without the lossy store")
	}
	parallel := opts.Workers > 0
	if opts.Lossy {
		switch opts.Search {
		case SearchStateless, SearchDPOR:
			return nil, fmt.Errorf("mpbasset: Lossy (-lossy) requires a stateful search (stateless and DPOR searches keep no visited set)")
		}
		switch {
		case opts.Property != nil:
			return nil, fmt.Errorf("mpbasset: Lossy (-lossy) is incompatible with Property (-property): nested DFS cycle detection needs an exact visited set")
		case opts.ExactStates:
			return nil, fmt.Errorf("mpbasset: Lossy (-lossy) is incompatible with ExactStates: the bitstate store keeps hash probes, not states")
		case opts.StoreBudgetBytes > 0:
			return nil, fmt.Errorf("mpbasset: Lossy (-lossy) is incompatible with StoreBudgetBytes (-mem-budget): the bitstate store never grows, size it with BitstateBytes (-bitstate-bytes) instead")
		}
	}
	var coll *explore.Collapser
	if opts.Compress {
		switch opts.Search {
		case SearchStateless, SearchDPOR:
			return nil, fmt.Errorf("mpbasset: Compress (-compress) requires a stateful search (stateless and DPOR searches keep no visited set to compress)")
		}
		if opts.SymmetryRoles != nil {
			return nil, fmt.Errorf("mpbasset: Compress (-compress) is incompatible with SymmetryRoles (-symmetry): symmetry reduction installs its own canonicalizer")
		}
		coll = explore.NewCollapser()
		xo.Canon = coll.Canon
	}
	var spill *explore.SpillStore
	if opts.Lossy {
		xo.Store = explore.NewBitstateStore(opts.BitstateBytes, 0)
	} else if opts.StoreBudgetBytes > 0 {
		if opts.ExactStates {
			return nil, fmt.Errorf("mpbasset: StoreBudgetBytes is incompatible with ExactStates (the spill tier stores 128-bit fingerprints only)")
		}
		switch opts.Search {
		case SearchStateless, SearchDPOR:
			return nil, fmt.Errorf("mpbasset: StoreBudgetBytes (-mem-budget) requires a stateful search (stateless and DPOR searches keep no visited set to spill)")
		}
		sp, err := explore.NewSpillStore(explore.SpillConfig{
			BudgetBytes: opts.StoreBudgetBytes,
			Dir:         opts.SpillDir,
		})
		if err != nil {
			return nil, err
		}
		spill = sp
		xo.Store = sp
	} else {
		switch {
		case parallel && opts.ExactStates:
			xo.Store = explore.NewShardedExactStore()
		case parallel:
			xo.Store = explore.NewShardedHashStore()
		case !opts.ExactStates:
			xo.Store = explore.NewHashStore()
		}
	}
	if opts.SymmetryRoles != nil {
		canon, err := symmetry.New(p.N, opts.SymmetryRoles)
		if err != nil {
			return nil, err
		}
		xo.Canon = canon.Canon
	}
	res, err := runSearch(p, opts, xo, parallel)
	// The spill store owns disk state (run files, possibly a temporary
	// directory); release it before handing the result back. Spill
	// activity was already copied into res.Stats by the engine.
	if spill != nil {
		if cerr := spill.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		return nil, err
	}
	// Compressed trace keys are run-internal intern-table IDs; decompress
	// them so callers (Replay with a nil canon, DOT rendering) always see
	// the states' full canonical keys, regardless of Compress. This also
	// restores bit-identical traces across worker counts: intern IDs depend
	// on the parallel engines' visit order, full keys do not.
	if coll != nil {
		if xerr := coll.ExpandTrace(res.Trace); xerr != nil {
			return nil, fmt.Errorf("mpbasset: decompressing counterexample trace: %w", xerr)
		}
	}
	return res, nil
}

// runSearch dispatches to the engine selected by opts.Search.
func runSearch(p *Protocol, opts Options, xo explore.Options, parallel bool) (*Result, error) {
	search := opts.Search
	if search == 0 {
		search = SearchSPOR
	}
	// Each stateful search has a sequential engine and a parallel engine
	// that reproduces it bit-identically: the DFS searches pair with the
	// speculative ParallelDFS, the BFS search with the frontier-parallel
	// ParallelBFS. With a liveness property the DFS searches run the nested
	// (NDFS) variants instead, same determinism guarantee.
	stateful := func(sequential, parallelEngine func(*core.Protocol, explore.Options) (*explore.Result, error)) (*Result, error) {
		if parallel {
			return parallelEngine(p, xo)
		}
		return sequential(p, xo)
	}
	dfs := func() (*Result, error) {
		if xo.Property != nil {
			return stateful(explore.NDFS, explore.ParallelNDFS)
		}
		return stateful(explore.DFS, explore.ParallelDFS)
	}
	switch search {
	case SearchSPOR:
		exp, err := por.NewExpander(p)
		if err != nil {
			return nil, err
		}
		exp.BestSeed = opts.BestSeed
		xo.Expander = exp
		return dfs()
	case SearchUnreduced:
		return dfs()
	case SearchBFS:
		return stateful(explore.BFS, explore.ParallelBFS)
	case SearchStateless:
		if parallel {
			return nil, fmt.Errorf("mpbasset: Workers (-workers) is not supported by stateless search — no parallel engine exists for it (SearchDPOR has one)")
		}
		return explore.StatelessDFS(p, xo)
	case SearchDPOR:
		if parallel {
			return dpor.ExploreParallel(p, xo)
		}
		return dpor.Explore(p, xo)
	default:
		return nil, fmt.Errorf("mpbasset: unknown search %d", search)
	}
}
